// E7 — coverage: burst delay vs normalised distance from the serving base
// station (the paper's "coverage" claim).  The channel-adaptive stack keeps
// cell-edge users servable (at low modes / small SGR) instead of failing
// them; coverage radius = outermost distance bin whose mean delay stays
// within a factor of the cell-centre delay.
//
// Expected shape: delay grows toward the cell edge for every PHY, but the
// adaptive VTAOC curve stays flatter and usable further out than the
// fixed-rate PHY, which loses its service area once the fixed mode's
// threshold stops clearing.
//
// Runs on the sweep engine: a two-scenario fixed-mode axis (adaptive vs
// fixed-m4), with the per-distance-bin metrics read from the merged result.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/metrics.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  sweep::SweepSpec spec;
  spec.name = "E7-coverage";
  spec.base = wide_config(4007);
  spec.base.sim_duration_s = 90.0;
  spec.base.data.users = 14;
  spec.axes = {sweep::axis_fixed_mode({0, 4})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // identical user drops for both PHYs

  const sweep::SweepResult result =
      sweep::run_sweep(spec, common::default_thread_count());
  const sim::SimMetrics& adaptive = result.at({0}).merged;
  const sim::SimMetrics& fixed = result.at({1}).merged;

  common::Table t({"bin", "dist/R", "adaptive: n", "delay(s)", "fixed-m4: n",
                   "delay(s)"});
  for (std::size_t b = 0; b < sim::kCoverageBins; ++b) {
    const double frac = (static_cast<double>(b) + 0.5) * 1.2 /
                        static_cast<double>(sim::kCoverageBins);
    t.add_row({std::to_string(b), common::format_double(frac, 3),
               std::to_string(adaptive.delay_by_distance[b].count()),
               common::format_double(adaptive.delay_by_distance[b].mean(), 4),
               std::to_string(fixed.delay_by_distance[b].count()),
               common::format_double(fixed.delay_by_distance[b].mean(), 4)});
  }
  t.print("E7: burst delay vs normalised distance to serving BS (19 cells)");
  std::printf(
      "\n# overall: adaptive mean %.3f s (outage %.3f), fixed-m4 mean %.3f s"
      " (outage %.3f)\n",
      adaptive.mean_delay_s(), adaptive.sch_outage_rate(), fixed.mean_delay_s(),
      fixed.sch_outage_rate());
  return 0;
}
