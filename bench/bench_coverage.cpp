// E7 — coverage: burst delay vs normalised distance from the serving base
// station (the paper's "coverage" claim).  The channel-adaptive stack keeps
// cell-edge users servable (at low modes / small SGR) instead of failing
// them; coverage radius = outermost distance bin whose mean delay stays
// within a factor of the cell-centre delay.
//
// Expected shape: delay grows toward the cell edge for every PHY, but the
// adaptive VTAOC curve stays flatter and usable further out than the
// fixed-rate PHY, which loses its service area once the fixed mode's
// threshold stops clearing.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/sim/metrics.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  common::Table t({"bin", "dist/R", "adaptive: n", "delay(s)", "fixed-m4: n",
                   "delay(s)"});

  auto run = [](int fixed_mode) {
    sim::SystemConfig cfg = wide_config(4007);
    cfg.sim_duration_s = 90.0;
    cfg.data.users = 14;
    cfg.phy.fixed_mode = fixed_mode;
    sim::Simulator simulator(cfg);
    return simulator.run();
  };
  const sim::SimMetrics adaptive = run(0);
  const sim::SimMetrics fixed = run(4);

  for (std::size_t b = 0; b < sim::kCoverageBins; ++b) {
    const double frac = (static_cast<double>(b) + 0.5) * 1.2 /
                        static_cast<double>(sim::kCoverageBins);
    t.add_row({std::to_string(b), common::format_double(frac, 3),
               std::to_string(adaptive.delay_by_distance[b].count()),
               common::format_double(adaptive.delay_by_distance[b].mean(), 4),
               std::to_string(fixed.delay_by_distance[b].count()),
               common::format_double(fixed.delay_by_distance[b].mean(), 4)});
  }
  t.print("E7: burst delay vs normalised distance to serving BS (19 cells)");
  std::printf(
      "\n# overall: adaptive mean %.3f s (outage %.3f), fixed-m4 mean %.3f s"
      " (outage %.3f)\n",
      adaptive.mean_delay_s(), adaptive.sch_outage_rate(), fixed.mean_delay_s(),
      fixed.sch_outage_rate());
  return 0;
}
