// E3 — VTAOC mode-occupancy distribution vs mean CSI (the "typical mode
// sequence of a transmitted frame" of Fig. 1b, in distribution form).
//
// Expected shape: occupancy mass walks up the mode ladder as the local-mean
// CSI improves; outage dominates below the mode-1 threshold (~4.9 dB).
#include <cstdio>

#include "src/common/table.hpp"
#include "src/common/units.hpp"
#include "src/phy/adaptation.hpp"

using namespace wcdma;

int main() {
  phy::VtaocParams params;
  params.b1 = 4.0;
  phy::AdaptationPolicy policy(phy::make_vtaoc_modes(params), 1e-3);

  common::Table t({"meanCSI(dB)", "outage", "m1", "m2", "m3", "m4", "m5", "m6",
                   "E[beta]"});
  for (double db = -6.0; db <= 18.0 + 1e-9; db += 3.0) {
    const double eps = common::db_to_linear(db);
    std::vector<double> row = {db, policy.outage_probability_rayleigh(eps)};
    for (int q = 1; q <= 6; ++q) row.push_back(policy.mode_probability_rayleigh(eps, q));
    row.push_back(policy.avg_throughput_rayleigh(eps));
    t.add_numeric_row(row, 4);
  }
  t.print("E3: VTAOC mode occupancy vs mean CSI (Pb=1e-3)");

  std::printf("\n");
  common::Table th({"mode", "beta(bits/sym)", "threshold(dB)"});
  for (int q = 1; q <= 6; ++q) {
    th.add_numeric_row({static_cast<double>(q), policy.modes().mode(q).throughput,
                        common::linear_to_db(policy.thresholds()[q - 1])});
  }
  th.print("E3b: constant-BER adaptation thresholds");
  return 0;
}
