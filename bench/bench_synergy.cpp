// E8 — the synergy claim (§1: "synergy could be attained by interactions
// between the adaptive physical layer and the burst admission layer"):
// a 2x2 ablation of {adaptive VTAOC, fixed-rate PHY} x {JABA-SD, FCFS-single}.
//
// Expected shape: each ingredient helps on its own, but the combination
// (adaptive PHY + optimising scheduler) gains more than the sum of the
// individual improvements, because the scheduler's objective actually sees
// the per-user channel state through delta-beta.
//
// Runs on the sweep engine; CRN seeding means all four cells of the 2x2 see
// the same user drop, so the synergy arithmetic is a paired comparison.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  const sweep::SweepResult result =
      sweep::run_sweep(scenario::e8_synergy(), common::default_thread_count());

  common::Table t({"PHY", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "mean-SGR"});
  for (const sweep::ScenarioResult& s : result.scenarios) {
    const Row r = metrics_to_row(s.merged);
    t.add_row({s.labels[0], s.labels[1], common::format_double(r.mean_delay_s, 4),
               common::format_double(r.p95_delay_s, 4),
               common::format_double(r.throughput_kbps, 4),
               common::format_double(r.mean_sgr, 3)});
  }
  t.print("E8: synergy 2x2 - PHY adaptivity x scheduler (20 data users)");

  // Axis 0 is the PHY (0 = adaptive, 1 = fixed-m3); axis 1 the scheduler
  // (0 = JABA-SD, 1 = FCFS-single).
  auto delay = [&result](std::size_t phy, std::size_t sched) {
    return result.at({phy, sched}).merged.mean_delay_s();
  };
  const double gain_phy = delay(1, 1) - delay(0, 1);    // PHY alone (under FCFS)
  const double gain_sched = delay(1, 1) - delay(1, 0);  // scheduler alone (fixed PHY)
  const double gain_joint = delay(1, 1) - delay(0, 0);  // both
  std::printf("\n# delay reduction vs (fixed, FCFS-single): PHY alone %.3f s,"
              " scheduler alone %.3f s, jointly %.3f s (synergy when joint >"
              " sum of parts: %+0.3f s)\n",
              gain_phy, gain_sched, gain_joint, gain_joint - gain_phy - gain_sched);
  return 0;
}
