// E8 — the synergy claim (§1: "synergy could be attained by interactions
// between the adaptive physical layer and the burst admission layer"):
// a 2x2 ablation of {adaptive VTAOC, fixed-rate PHY} x {JABA-SD, FCFS-single}.
//
// Expected shape: each ingredient helps on its own, but the combination
// (adaptive PHY + optimising scheduler) gains more than the sum of the
// individual improvements, because the scheduler's objective actually sees
// the per-user channel state through delta-beta.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  common::Table t({"PHY", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "mean-SGR"});
  double delay[2][2] = {};
  int pi = 0;
  for (const int fixed_mode : {0, 3}) {  // 0 = adaptive VTAOC
    int si = 0;
    for (const auto kind :
         {admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kFcfsSingle}) {
      sim::SystemConfig cfg = hotspot_config(4008);
      cfg.data.users = 20;
      cfg.phy.fixed_mode = fixed_mode;
      cfg.admission.scheduler = kind;
      const Row r = run_row(cfg);
      delay[pi][si] = r.mean_delay_s;
      t.add_row({fixed_mode == 0 ? "adaptive" : "fixed-m3", to_string(kind),
                 common::format_double(r.mean_delay_s, 4),
                 common::format_double(r.p95_delay_s, 4),
                 common::format_double(r.throughput_kbps, 4),
                 common::format_double(r.mean_sgr, 3)});
      ++si;
    }
    ++pi;
  }
  t.print("E8: synergy 2x2 - PHY adaptivity x scheduler (20 data users)");

  const double gain_phy = delay[1][1] - delay[0][1];    // PHY alone (under FCFS)
  const double gain_sched = delay[1][1] - delay[1][0];  // scheduler alone (fixed PHY)
  const double gain_joint = delay[1][1] - delay[0][0];  // both
  std::printf("\n# delay reduction vs (fixed, FCFS-single): PHY alone %.3f s,"
              " scheduler alone %.3f s, jointly %.3f s (synergy when joint >"
              " sum of parts: %+0.3f s)\n",
              gain_phy, gain_sched, gain_joint, gain_joint - gain_phy - gain_sched);
  return 0;
}
