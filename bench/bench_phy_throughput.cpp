// E1 — VTAOC average throughput vs mean CSI, against fixed-rate PHYs.
//
// Reproduces the claim of Section 2 / ref [3]: "a significant gain in the
// average throughput can be achieved in these adaptive channel coding
// schemes."  Closed-form Rayleigh averages; one block per target BER.
// Expected shape: the adaptive curve is the upper envelope of all fixed-mode
// curves, with the largest relative gain in the mid-CSI region where no
// single fixed mode fits the fading spread.
#include <cstdio>

#include "src/common/table.hpp"
#include "src/common/units.hpp"
#include "src/phy/adaptation.hpp"

using namespace wcdma;

int main() {
  for (const double pb : {1e-2, 1e-3, 1e-4}) {
    phy::VtaocParams params;
    params.b1 = 4.0;
    phy::AdaptationPolicy policy(phy::make_vtaoc_modes(params), pb);

    common::Table t({"meanCSI(dB)", "adaptive", "fixed-m1", "fixed-m3", "fixed-m5",
                     "best-fixed", "gain-vs-best"});
    for (double db = -10.0; db <= 20.0 + 1e-9; db += 2.5) {
      const double eps = common::db_to_linear(db);
      const double adaptive = policy.avg_throughput_rayleigh(eps);
      double best_fixed = 0.0;
      for (int q = 1; q <= 6; ++q) {
        best_fixed = std::max(best_fixed,
                              policy.fixed_mode_avg_throughput_rayleigh(eps, q));
      }
      t.add_numeric_row({db, adaptive,
                         policy.fixed_mode_avg_throughput_rayleigh(eps, 1),
                         policy.fixed_mode_avg_throughput_rayleigh(eps, 3),
                         policy.fixed_mode_avg_throughput_rayleigh(eps, 5), best_fixed,
                         best_fixed > 0.0 ? adaptive / best_fixed : 0.0});
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "E1: VTAOC avg throughput (bits/sym) vs mean CSI, Pb=%g", pb);
    t.print(title);
    std::printf("\n");
  }
  return 0;
}
