// E10 — J1 vs J2 (Eq. 19-21): the utilisation/delay trade and the effect of
// the delay-penalty parameters lambda (scaling) and mu (forgetting).
//
// Expected shape: J1 maximises raw throughput but lets long-waiting,
// poor-channel requests age (worse tail delay and fairness); J2 trades a
// little throughput for a flatter delay distribution, increasingly so as
// lambda grows.
//
// Runs on the sweep engine: one compound (objective, lambda, mu) axis with
// CRN seeding, so every objective scores the same user drop.
#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  const sweep::SweepResult result =
      sweep::run_sweep(scenario::e10_objectives(), common::default_thread_count());

  common::Table t({"objective", "mean-delay(s)", "p95-delay(s)", "throughput(kbps)",
                   "max-queue-wait(s)"});
  for (const sweep::ScenarioResult& s : result.scenarios) {
    const sim::SimMetrics& m = s.merged;
    t.add_row({s.labels[0], common::format_double(m.mean_delay_s(), 4),
               common::format_double(m.p95_delay_s(), 4),
               common::format_double(m.data_throughput_bps() / 1000.0, 4),
               common::format_double(m.queue_delay_s.max(), 4)});
  }
  t.print("E10: J1 vs J2 and delay-penalty parameter sweep (20 data users)");
  return 0;
}
