// E10 — J1 vs J2 (Eq. 19-21): the utilisation/delay trade and the effect of
// the delay-penalty parameters lambda (scaling) and mu (forgetting).
//
// Expected shape: J1 maximises raw throughput but lets long-waiting,
// poor-channel requests age (worse tail delay and fairness); J2 trades a
// little throughput for a flatter delay distribution, increasingly so as
// lambda grows.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  struct Case {
    const char* label;
    admission::ObjectiveKind kind;
    double lambda;
    double mu;
  };
  const Case cases[] = {
      {"J1", admission::ObjectiveKind::kJ1MaxRate, 0.0, 0.5},
      {"J2(l=0.5,mu=0.5)", admission::ObjectiveKind::kJ2DelayAware, 0.5, 0.5},
      {"J2(l=2,mu=0.5)", admission::ObjectiveKind::kJ2DelayAware, 2.0, 0.5},
      {"J2(l=10,mu=0.5)", admission::ObjectiveKind::kJ2DelayAware, 10.0, 0.5},
      {"J2(l=2,mu=0.1)", admission::ObjectiveKind::kJ2DelayAware, 2.0, 0.1},
      {"J2(l=2,mu=2.0)", admission::ObjectiveKind::kJ2DelayAware, 2.0, 2.0},
  };

  common::Table t({"objective", "mean-delay(s)", "p95-delay(s)", "throughput(kbps)",
                   "max-queue-wait(s)"});
  for (const Case& c : cases) {
    sim::SystemConfig cfg = hotspot_config(4010);
    cfg.data.users = 20;
    cfg.admission.objective = c.kind;
    cfg.admission.penalty.lambda = c.lambda;
    cfg.admission.penalty.mu = c.mu;
    sim::Simulator simulator(cfg);
    const sim::SimMetrics m = simulator.run();
    t.add_row({c.label, common::format_double(m.mean_delay_s(), 4),
               common::format_double(m.p95_delay_s(), 4),
               common::format_double(m.data_throughput_bps() / 1000.0, 4),
               common::format_double(m.queue_delay_s.max(), 4)});
  }
  t.print("E10: J1 vs J2 and delay-penalty parameter sweep (20 data users)");
  return 0;
}
