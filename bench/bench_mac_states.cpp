// E11 — MAC state machine effect (Fig. 3, Eq. 22-23): how the Suspended /
// Dormant set-up delay penalties D1/D2 and the timers T2/T3 shape the burst
// delay, and how much the J2 objective's awareness of the penalty buys.
//
// Expected shape: larger set-up penalties raise the mean delay; shorter
// T2/T3 push more re-activations into the penalised states, amplifying the
// effect; J2 (which sees w = t_w + D_s) absorbs part of the hit relative to
// J1.
//
// Runs on the sweep engine: a compound timer axis crossed with the
// objective axis, CRN-paired so every cell sees the same user drop.
#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  const sweep::SweepResult result =
      sweep::run_sweep(scenario::e11_mac_states(), common::default_thread_count());

  common::Table t({"timers", "objective", "mean-delay(s)", "p95-delay(s)",
                   "queue-delay(s)"});
  for (const sweep::ScenarioResult& s : result.scenarios) {
    const sim::SimMetrics& m = s.merged;
    t.add_row({s.labels[0], s.labels[1], common::format_double(m.mean_delay_s(), 4),
               common::format_double(m.p95_delay_s(), 4),
               common::format_double(m.queue_delay_s.mean(), 4)});
  }
  t.print("E11: MAC set-up penalty sweep (Fig. 3 timers; Eq. 22-23)");
  return 0;
}
