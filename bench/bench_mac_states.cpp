// E11 — MAC state machine effect (Fig. 3, Eq. 22-23): how the Suspended /
// Dormant set-up delay penalties D1/D2 and the timers T2/T3 shape the burst
// delay, and how much the J2 objective's awareness of the penalty buys.
//
// Expected shape: larger set-up penalties raise the mean delay; shorter
// T2/T3 push more re-activations into the penalised states, amplifying the
// effect; J2 (which sees w = t_w + D_s) absorbs part of the hit relative to
// J1.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  struct Case {
    const char* label;
    double t2, t3, d1, d2;
  };
  const Case cases[] = {
      {"no-penalty", 2.0, 10.0, 0.0, 0.0},
      {"default", 2.0, 10.0, 0.040, 0.300},
      {"slow-reacquire", 2.0, 10.0, 0.200, 1.000},
      {"eager-timers", 0.5, 2.0, 0.040, 0.300},
      {"eager+slow", 0.5, 2.0, 0.200, 1.000},
  };

  common::Table t({"timers", "objective", "mean-delay(s)", "p95-delay(s)",
                   "queue-delay(s)"});
  for (const Case& c : cases) {
    for (const auto obj :
         {admission::ObjectiveKind::kJ2DelayAware, admission::ObjectiveKind::kJ1MaxRate}) {
      sim::SystemConfig cfg = hotspot_config(4011);
      cfg.data.users = 18;
      cfg.data.mean_reading_s = 3.0;  // long gaps: MAC decays between bursts
      cfg.mac_timers.t2_s = c.t2;
      cfg.mac_timers.t3_s = c.t3;
      cfg.mac_timers.d1_s = c.d1;
      cfg.mac_timers.d2_s = c.d2;
      cfg.admission.objective = obj;
      sim::Simulator simulator(cfg);
      const sim::SimMetrics m = simulator.run();
      t.add_row({c.label, to_string(obj), common::format_double(m.mean_delay_s(), 4),
                 common::format_double(m.p95_delay_s(), 4),
                 common::format_double(m.queue_delay_s.mean(), 4)});
    }
  }
  t.print("E11: MAC set-up penalty sweep (Fig. 3 timers; Eq. 22-23)");
  return 0;
}
