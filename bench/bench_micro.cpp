// E13 — google-benchmark microbenchmarks for the computational kernels:
// simplex LP solves, exact branch-and-bound and the greedy engine at
// admission-problem sizes, region construction, channel evolution, and the
// full simulator frame step.
#include <benchmark/benchmark.h>

#include "src/admission/measurement.hpp"
#include "src/admission/schedulers.hpp"
#include "src/channel/channel.hpp"
#include "src/common/rng.hpp"
#include "src/opt/branch_bound.hpp"
#include "src/opt/knapsack.hpp"
#include "src/opt/simplex.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

namespace {

opt::IntegerProgram make_ip(std::size_t nd, std::size_t cells, std::uint64_t seed) {
  common::Rng rng(seed);
  opt::IntegerProgram p;
  p.a = common::Matrix(cells, nd, 0.0);
  for (std::size_t k = 0; k < cells; ++k) {
    for (std::size_t j = 0; j < nd; ++j) {
      p.a(k, j) = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.05, 1.0);
    }
  }
  p.b.assign(cells, 0.0);
  for (auto& b : p.b) b = rng.uniform(1.0, 8.0);
  p.c.assign(nd, 0.0);
  for (auto& c : p.c) c = rng.uniform(0.1, 3.0);
  p.upper.assign(nd, 16);
  return p;
}

void BM_SimplexSolve(benchmark::State& state) {
  const auto nd = static_cast<std::size_t>(state.range(0));
  const opt::IntegerProgram ip = make_ip(nd, std::max<std::size_t>(2, nd / 4), 1);
  opt::LpProblem lp;
  lp.a = ip.a;
  lp.b = ip.b;
  lp.c = ip.c;
  lp.upper.assign(nd, 16.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BranchBoundExact(benchmark::State& state) {
  const auto nd = static_cast<std::size_t>(state.range(0));
  const opt::IntegerProgram ip = make_ip(nd, std::max<std::size_t>(2, nd / 4), 2);
  opt::BranchBoundSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(ip));
  }
}
BENCHMARK(BM_BranchBoundExact)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GreedyIncrements(benchmark::State& state) {
  const auto nd = static_cast<std::size_t>(state.range(0));
  const opt::IntegerProgram ip = make_ip(nd, std::max<std::size_t>(2, nd / 4), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::greedy_increments(ip));
  }
}
BENCHMARK(BM_GreedyIncrements)->Arg(8)->Arg(32)->Arg(128);

void BM_KnapsackDp(benchmark::State& state) {
  common::Rng rng(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> w(n);
  std::vector<double> v(n);
  std::vector<int> u(n, 8);
  for (std::size_t j = 0; j < n; ++j) {
    w[j] = 1 + static_cast<std::int64_t>(rng.uniform_int(20));
    v[j] = rng.uniform(0.1, 3.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_bounded_knapsack(w, 200, v, u));
  }
}
BENCHMARK(BM_KnapsackDp)->Arg(8)->Arg(32);

void BM_ForwardRegionBuild(benchmark::State& state) {
  const std::size_t nd = static_cast<std::size_t>(state.range(0));
  admission::ForwardLinkInputs in;
  in.cell_load_watt.assign(19, 10.0);
  in.p_max_watt = 20.0;
  in.gamma_s = 3.2;
  in.users.resize(nd);
  common::Rng rng(5);
  for (auto& u : in.users) {
    u.reduced_active_set = {{rng.uniform_int(19), rng.uniform(0.01, 0.5)},
                            {rng.uniform_int(19), rng.uniform(0.01, 0.5)}};
    u.alpha_fl = 1.8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_forward_region(in));
  }
}
BENCHMARK(BM_ForwardRegionBuild)->Arg(8)->Arg(32);

void BM_Ar1FadingStep(benchmark::State& state) {
  channel::Ar1Fading fading(30.0, 0.02, common::Rng(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fading.step(0.02));
  }
}
BENCHMARK(BM_Ar1FadingStep);

void BM_JakesFadingStep(benchmark::State& state) {
  channel::JakesFading fading(30.0, common::Rng(7), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fading.step(0.02));
  }
}
BENCHMARK(BM_JakesFadingStep);

void BM_SimulatorFrame(benchmark::State& state) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = static_cast<int>(state.range(0));
  cfg.voice.users = 30;
  cfg.data.users = 10;
  cfg.sim_duration_s = 1e9;  // never ends on its own
  sim::Simulator simulator(cfg);
  for (int i = 0; i < 50; ++i) simulator.step_frame();  // settle
  for (auto _ : state) {
    simulator.step_frame();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorFrame)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
